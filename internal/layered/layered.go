// Package layered implements the layered decompositions of §4.4 and §7: an
// ordering of the demand instances into groups G1..Gℓ together with a
// critical edge set π(d) per instance, satisfying the layering property —
// for i ≤ j and overlapping d1 ∈ Gi, d2 ∈ Gj, path(d2) contains at least
// one edge of π(d1).
//
// Two constructions are provided:
//
//   - Trees (Lemma 4.2): groups by decreasing capture depth in a tree
//     decomposition; π(d) = wings of the capture node plus wings of the
//     bending points w.r.t. the component's pivots; ∆ = 2(θ+1). With the
//     ideal decomposition: ∆ = 6, ℓ = O(log n).
//   - Lines (§7, implicit in Panconesi–Sozio): groups by length doubling;
//     π(d) = {start, mid, end} timeslots; ∆ = 3, ℓ = ⌈log(Lmax/Lmin)⌉+1.
package layered

import (
	"fmt"
	"math/bits"

	"treesched/internal/graph"
	"treesched/internal/instance"
	"treesched/internal/par"
	"treesched/internal/treedecomp"
)

// rowShard is the instances-per-shard granule of the parallel row
// construction. Row computation is a few tree walks (microseconds), so
// shards are sized to amortize goroutine handoff while still load-
// balancing trees of uneven depth across workers.
const rowShard = 512

// Assignment attaches a group (1-based epoch index) and a critical edge set
// (global edge ids) to every demand instance, parallel to the instance
// slice it was built from.
type Assignment struct {
	Group     []int32
	Pi        [][]int32
	NumGroups int
	// Delta is the maximum critical-set size |π(d)| observed.
	Delta int
}

// ForTrees builds the Lemma 4.2 layered decomposition for a tree problem,
// given one tree decomposition per tree. Group 1 holds the instances
// captured at the deepest decomposition nodes of their respective trees.
func ForTrees(p *instance.Problem, insts []instance.Inst, decomps []*treedecomp.Decomposition) (*Assignment, error) {
	return forTrees(p, insts, decomps, false, 1)
}

// ForTreesSharded is ForTrees with row construction sharded across a
// bounded worker fan-out (workers: 0 = GOMAXPROCS, ≤1 = the serial
// loop). Every row is a pure per-instance function written to its own
// index slot and the Delta/NumGroups reduction runs serially afterwards,
// so the Assignment is identical at any worker count.
func ForTreesSharded(p *instance.Problem, insts []instance.Inst, decomps []*treedecomp.Decomposition, workers int) (*Assignment, error) {
	return forTrees(p, insts, decomps, false, workers)
}

// ForTreesCaptureWingsSharded is ForTreesCaptureWings with the sharded
// row construction of ForTreesSharded.
func ForTreesCaptureWingsSharded(p *instance.Problem, insts []instance.Inst, decomps []*treedecomp.Decomposition, workers int) (*Assignment, error) {
	return forTrees(p, insts, decomps, true, workers)
}

// ForTreesCaptureWings builds the Appendix-A ordering: the same
// depth-based groups, but π(d) holds only the wings of the capture node
// µ(d) on path(d), so ∆ ≤ 2 (Observation A.1). Valid for the sequential
// algorithm, which processes one tree at a time; the distributed layered
// property across same-depth captures of different nodes does NOT hold
// for these critical sets.
func ForTreesCaptureWings(p *instance.Problem, insts []instance.Inst, decomps []*treedecomp.Decomposition) (*Assignment, error) {
	return forTrees(p, insts, decomps, true, 1)
}

func forTrees(p *instance.Problem, insts []instance.Inst, decomps []*treedecomp.Decomposition, wingsOnly bool, workers int) (*Assignment, error) {
	if p.Kind != instance.KindTree {
		return nil, fmt.Errorf("layered: ForTrees on %v problem", p.Kind)
	}
	if len(decomps) != len(p.Trees) {
		return nil, fmt.Errorf("layered: %d decompositions for %d trees", len(decomps), len(p.Trees))
	}
	a := &Assignment{
		Group: make([]int32, len(insts)),
		Pi:    make([][]int32, len(insts)),
	}
	par.Shards(par.Resolve(workers), len(insts), rowShard, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a.Group[i], a.Pi[i] = TreeRow(p, insts[i], decomps[insts[i].Net], wingsOnly)
		}
	})
	a.reduce()
	return a, nil
}

// reduce recomputes the NumGroups/Delta maxima from the filled rows — a
// serial pass, so the scalars never depend on worker scheduling.
func (a *Assignment) reduce() {
	a.NumGroups, a.Delta = 0, 0
	for i := range a.Group {
		if g := int(a.Group[i]); g > a.NumGroups {
			a.NumGroups = g
		}
		if len(a.Pi[i]) > a.Delta {
			a.Delta = len(a.Pi[i])
		}
	}
}

// TreeRow computes the layered row of one tree instance: its group
// (1-based epoch) and critical edge set π(d) as global edge ids. The row
// is a pure function of (instance, decomposition), which is what makes
// incremental model rebuilds possible: an unchanged instance keeps its
// row verbatim. wingsOnly selects the Appendix-A critical sets.
func TreeRow(p *instance.Problem, d instance.Inst, dec *treedecomp.Decomposition, wingsOnly bool) (int32, []int32) {
	z := dec.Capture(int(d.U), int(d.V))
	// Deepest captures go first: group = ℓ_q − depth(z) + 1.
	g := int32(dec.MaxDepth() - dec.Depth(z) + 1)
	var local []graph.EdgeID
	if wingsOnly {
		local = p.Trees[d.Net].Wings(int(d.U), int(d.V), z)
	} else {
		local = dec.CriticalEdges(int(d.U), int(d.V))
	}
	pi := make([]int32, len(local))
	for k, e := range local {
		pi[k] = p.GlobalEdge(int(d.Net), e)
	}
	return g, pi
}

// ForLines builds the §7 length-doubling layered decomposition for a line
// problem. Instances of length in [2^(i-1)·Lmin, 2^i·Lmin) form group i;
// π(d) = {start, mid, end} timeslots of the instance.
func ForLines(p *instance.Problem, insts []instance.Inst) (*Assignment, error) {
	return ForLinesSharded(p, insts, 1)
}

// ForLinesSharded is ForLines with the per-instance rows sharded across
// workers (0 = GOMAXPROCS, ≤1 = serial). Lmin — the one global input of
// the line rows — is computed by a serial pass first; everything after
// is per-instance, so the result is identical at any worker count.
func ForLinesSharded(p *instance.Problem, insts []instance.Inst, workers int) (*Assignment, error) {
	if p.Kind != instance.KindLine {
		return nil, fmt.Errorf("layered: ForLines on %v problem", p.Kind)
	}
	a := &Assignment{
		Group: make([]int32, len(insts)),
		Pi:    make([][]int32, len(insts)),
	}
	lmin := LineLmin(insts)
	par.Shards(par.Resolve(workers), len(insts), rowShard, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a.Group[i] = LineGroup(insts[i].Len(), lmin)
			a.Pi[i] = LinePi(p, insts[i])
		}
	})
	a.reduce()
	return a, nil
}

// LineLmin returns Lmin, the minimum instance length, the anchor of the
// length-doubling groups. Zero for an empty instance set.
func LineLmin(insts []instance.Inst) int32 {
	lmin := int32(0)
	for i, d := range insts {
		if l := d.Len(); i == 0 || l < lmin {
			lmin = l
		}
	}
	return lmin
}

// LineGroup returns the length-doubling group of an instance of length l:
// ⌊log2(l/Lmin)⌋ + 1. Unlike the tree groups it depends on the global
// Lmin, so an incremental rebuild recomputes every line group whenever
// the instance set changes (an O(n) integer pass).
func LineGroup(l, lmin int32) int32 {
	return int32(bits.Len32(uint32(l / lmin)))
}

// LinePi returns the §7 critical set of one line instance: its start, mid
// and end timeslots as global edge ids (deduplicated for short
// instances). A pure per-instance function, like TreeRow.
func LinePi(p *instance.Problem, d instance.Inst) []int32 {
	mid := (d.U + d.V) / 2
	pi := []int32{p.GlobalEdge(int(d.Net), d.U)}
	if mid != d.U {
		pi = append(pi, p.GlobalEdge(int(d.Net), mid))
	}
	if d.V != d.U && d.V != mid {
		pi = append(pi, p.GlobalEdge(int(d.Net), d.V))
	}
	return pi
}

// Verify brute-force checks the layering property over all instance pairs:
// for any overlapping d1 ∈ Gi, d2 ∈ Gj with i ≤ j, path(d2) must include a
// critical edge of d1. O(|D|² · path length); for tests and experiments.
func Verify(p *instance.Problem, insts []instance.Inst, a *Assignment) error {
	paths := make([]map[int32]bool, len(insts))
	for i := range insts {
		m := map[int32]bool{}
		for _, e := range p.PathEdges(insts[i]) {
			m[e] = true
		}
		paths[i] = m
	}
	for i := range insts {
		for j := range insts {
			if i == j || a.Group[i] > a.Group[j] {
				continue
			}
			if !p.Overlap(insts[i], insts[j]) {
				continue
			}
			hit := false
			for _, e := range a.Pi[i] {
				if paths[j][e] {
					hit = true
					break
				}
			}
			if !hit {
				return fmt.Errorf("layered: overlapping d%d (group %d) and d%d (group %d): path(d%d) misses π(d%d)=%v",
					i, a.Group[i], j, a.Group[j], j, i, a.Pi[i])
			}
		}
	}
	return nil
}
