// Videowall: bandwidth reservation on a campus distribution tree with
// non-uniform link capacities — the IPPS'13 title scenario.
//
// A media team wants to stream video feeds between buildings. The campus
// backbone is a tree (core switch, three distribution switches, leaf
// buildings); two parallel VLANs give each stream a choice of fabric. Core
// uplinks carry 2 Gb/s, access links 1 Gb/s; streams reserve 0.2–0.9 Gb/s
// end-to-end. The arbitrary-height capacitated solver places a
// near-optimal subset of streams.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"treesched"
)

func main() {
	// Vertices: 0 core; 1-3 distribution; 4-12 buildings (3 per switch).
	const n = 13
	edges := [][2]int{
		{0, 1}, {0, 2}, {0, 3},
		{1, 4}, {1, 5}, {1, 6},
		{2, 7}, {2, 8}, {2, 9},
		{3, 10}, {3, 11}, {3, 12},
	}
	mkTree := func() *treesched.Tree {
		t, err := treesched.NewTree(n, edges)
		if err != nil {
			log.Fatal(err)
		}
		return t
	}

	// Capacities by child endpoint: distribution uplinks (children 1,2,3)
	// carry 2 Gb/s, access links 1 Gb/s. Two identical VLAN fabrics.
	capRow := make([]float64, n)
	for v := 1; v < n; v++ {
		if v <= 3 {
			capRow[v] = 2.0
		} else {
			capRow[v] = 1.0
		}
	}
	p := &treesched.Problem{
		Kind:        treesched.KindTree,
		NumVertices: n,
		Trees:       []*treesched.Tree{mkTree(), mkTree()},
		Capacities:  [][]float64{capRow, append([]float64(nil), capRow...)},
	}

	// Streams: cross-campus feeds with profits ∝ audience size.
	rng := rand.New(rand.NewSource(7))
	buildings := []int{4, 5, 6, 7, 8, 9, 10, 11, 12}
	for i := 0; i < 14; i++ {
		u := buildings[rng.Intn(len(buildings))]
		v := buildings[rng.Intn(len(buildings))]
		for v == u {
			v = buildings[rng.Intn(len(buildings))]
		}
		access := []int{0, 1}
		if i%3 == 0 {
			access = []int{i % 2} // some teams are pinned to one VLAN
		}
		p.Demands = append(p.Demands, treesched.Demand{
			ID: i, U: u, V: v,
			Profit: float64(1 + rng.Intn(9)),
			Height: 0.2 + 0.1*float64(rng.Intn(8)), // 0.2–0.9 Gb/s
			Access: access,
		})
	}

	res, err := treesched.SolveArbitrary(p, treesched.Options{Epsilon: 0.25, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := treesched.VerifySolution(p, res.Selected); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("admitted %d of %d streams, total value %.0f\n", len(res.Selected), len(p.Demands), res.Profit)
	fmt.Println("stream  route        VLAN  Gb/s  value")
	for _, d := range res.Selected {
		fmt.Printf("  %2d    %2d → %-2d      %d    %.1f   %.0f\n",
			d.Demand, d.U, d.V, d.Net, d.Height, d.Profit)
	}
	fmt.Printf("\ncertificate: no admission plan exceeds value %.1f (this one is within %.2fx)\n",
		res.DualUB, res.CertifiedRatio)

	if opt, err := treesched.SolveExact(p, 0); err == nil {
		fmt.Printf("exact optimum: %.0f (achieved ratio %.3f)\n", opt.Profit, opt.Profit/res.Profit)
	}
}
