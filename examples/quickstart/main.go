// Quickstart: build a small tree-network problem by hand, run the paper's
// main algorithm (unit heights, 7+ε), and print the schedule with its
// optimality certificate.
package main

import (
	"fmt"
	"log"

	"treesched"
)

func main() {
	// A 10-vertex access network shaped like two stars bridged by an
	// aggregation link 4-5, replicated as two parallel trees (think two
	// wavelengths on the same fiber plant).
	edges := [][2]int{
		{0, 4}, {1, 4}, {2, 4}, {3, 4},
		{4, 5},
		{5, 6}, {5, 7}, {5, 8}, {5, 9},
	}
	t1, err := treesched.NewTree(10, edges)
	if err != nil {
		log.Fatal(err)
	}
	t2, err := treesched.NewTree(10, edges)
	if err != nil {
		log.Fatal(err)
	}

	p := &treesched.Problem{
		Kind:        treesched.KindTree,
		NumVertices: 10,
		Trees:       []*treesched.Tree{t1, t2},
		Demands: []treesched.Demand{
			// Cross-bridge circuits compete for edge 4-5 within a tree.
			{ID: 0, U: 0, V: 6, Profit: 5, Height: 1, Access: []int{0, 1}},
			{ID: 1, U: 1, V: 7, Profit: 4, Height: 1, Access: []int{0}},
			{ID: 2, U: 2, V: 8, Profit: 3, Height: 1, Access: []int{1}},
			// Local circuits that avoid the bridge.
			{ID: 3, U: 0, V: 1, Profit: 2, Height: 1, Access: []int{0, 1}},
			{ID: 4, U: 6, V: 7, Profit: 2, Height: 1, Access: []int{0, 1}},
		},
	}

	res, err := treesched.SolveTreeUnit(p, treesched.Options{Epsilon: 0.25, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	if err := treesched.VerifySolution(p, res.Selected); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheduled %d of %d demands, profit %.1f\n", len(res.Selected), len(p.Demands), res.Profit)
	for _, d := range res.Selected {
		fmt.Printf("  demand %d: vertices %d-%d on tree %d (profit %.1f)\n",
			d.Demand, d.U, d.V, d.Net, d.Profit)
	}
	fmt.Printf("certificate: OPT ≤ %.2f, so this run is within %.2fx of optimal (worst-case bound %.2f)\n",
		res.DualUB, res.CertifiedRatio, res.Bound)

	opt, err := treesched.SolveExact(p, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact optimum (branch & bound): %.1f\n", opt.Profit)
}
