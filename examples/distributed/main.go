// Distributed: the same scheduling algorithm executed two ways — the fast
// centralized driver and the real message-passing protocol in which every
// processor is a goroutine that only talks to processors sharing a
// resource. The outputs are identical for equal seeds; the distributed run
// additionally reports communication rounds and messages, which is the
// complexity currency of the paper (Theorem 5.3's round bound).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"treesched"
)

func main() {
	rng := rand.New(rand.NewSource(2026))

	fmt.Println("n (vertices)  rounds  messages  entries  aggregations  profit  == centralized")
	for _, n := range []int{32, 64, 128, 256} {
		p := treesched.GenerateTreeProblem(treesched.TreeWorkload{
			N: n, Trees: 3, Demands: 40, Unit: true,
		}, rng)

		central, err := treesched.SolveTreeUnit(p, treesched.Options{Epsilon: 0.25, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		distrib, err := treesched.SolveDistributedUnit(p, treesched.Options{Epsilon: 0.25, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		if err := treesched.VerifySolution(p, distrib.Selected); err != nil {
			log.Fatal(err)
		}
		same := math.Abs(central.Profit-distrib.Profit) < 1e-9
		fmt.Printf("%8d      %6d  %8d  %7d  %12d  %6.1f  %v\n",
			n, distrib.Net.Rounds, distrib.Net.Messages, distrib.Net.Entries,
			distrib.Net.Aggregations, distrib.Profit, same)
	}
	fmt.Println("\nrounds grow with log(n) (epochs track the ideal decomposition depth ≤ 2⌈log n⌉),")
	fmt.Println("not with n — the polylogarithmic round complexity of Theorem 5.3.")
	fmt.Println("entries counts delivered payload entries (instance ids and (id, δ) pairs):")
	fmt.Println("each is O(log m + log pmax) bits, the paper's per-message accounting (§5).")
}
