// Jobwindows: deadline scheduling on identical machines — the §7
// line-network scenario. Jobs have release times, deadlines, processing
// times and profits; three identical machines (resources) offer unit
// capacity per timeslot. The example contrasts this paper's (4+ε)
// algorithm with the Panconesi–Sozio (20+ε) baseline and greedy, and
// shows the window placement the solver chose.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"treesched"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	p := treesched.GenerateLineProblem(treesched.LineWorkload{
		Slots: 48, Resources: 3, Demands: 22,
		Unit: true, MaxProc: 10, Slack: 14, AccessProb: 0.7,
		PMin: 1, PMax: 20,
	}, rng)

	ours, err := treesched.SolveLineUnit(p, treesched.Options{Epsilon: 0.25, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	ps, err := treesched.SolvePanconesiSozio(p, treesched.Options{Epsilon: 0.25, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	seq, err := treesched.SolveSequentialLine(p, treesched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := treesched.SolveGreedy(p)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range []*treesched.Result{ours, ps, seq, greedy} {
		if err := treesched.VerifySolution(p, r.Selected); err != nil {
			log.Fatalf("%s: %v", r.Name, err)
		}
	}

	fmt.Println("algorithm                 profit  jobs  certified ≤   worst-case bound")
	fmt.Printf("multi-stage (this paper)  %6.1f  %4d   %8.2fx      %.1f\n",
		ours.Profit, len(ours.Selected), ours.CertifiedRatio, ours.Bound)
	fmt.Printf("Panconesi–Sozio baseline  %6.1f  %4d   %8.2fx      %.1f\n",
		ps.Profit, len(ps.Selected), ps.CertifiedRatio, ps.Bound)
	fmt.Printf("sequential 2-approx [4,5] %6.1f  %4d   %8.2fx      %.1f\n",
		seq.Profit, len(seq.Selected), seq.CertifiedRatio, seq.Bound)
	fmt.Printf("greedy                    %6.1f  %4d          —        —\n",
		greedy.Profit, len(greedy.Selected))

	// Gantt-style rendering of machine 0's schedule under our algorithm.
	fmt.Println("\nmachine 0 timeline (this paper's schedule):")
	lane := make([]byte, p.NumSlots)
	for i := range lane {
		lane[i] = '.'
	}
	for _, d := range ours.Selected {
		if d.Net != 0 {
			continue
		}
		mark := byte('A' + d.Demand%26)
		for s := d.U; s <= d.V; s++ {
			lane[s] = mark
		}
	}
	fmt.Printf("  |%s|\n", string(lane))
	fmt.Println(strings.Repeat(" ", 3) + "(letters = jobs, dots = idle slots)")
}
