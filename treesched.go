// Package treesched is a Go implementation of the distributed scheduling
// algorithms of Chakaravarthy, Roy and Sabharwal, "Distributed Algorithms
// for Scheduling on Line and Tree Networks with Non-uniform Bandwidths"
// (IPPS 2013; full version arXiv:1205.1924).
//
// The problem: m processors each own a demand — a vertex pair on a set of
// tree networks, or a time window on a set of line resources — with a
// profit and a bandwidth requirement (height). A feasible schedule places
// a subset of demands, each on a network its owner can access, so that on
// every edge the scheduled heights fit within the bandwidth. The goal is
// maximum total profit; the algorithms give constant-factor guarantees and
// run in a polylogarithmic number of communication rounds in a synchronous
// message-passing network of processors.
//
// Solvers (centralized drivers; see SolveDistributed* for the goroutine
// message-passing drivers):
//
//   - SolveTreeUnit: unit heights on tree networks, (7+ε)-approximation
//     (the paper's main result, Theorem 5.3).
//   - SolveLineUnit: unit heights on lines with windows, (4+ε)
//     (Theorem 7.1; improves Panconesi–Sozio's 20+ε by the factor 5).
//   - SolveNarrow: all heights ≤ 1/2, (2∆²+1)/(1−ε) (Lemma 6.2).
//   - SolveArbitrary: any heights, (80+ε) on trees / (23+ε) on lines
//     (Theorems 6.3, 7.2); handles non-uniform edge capacities.
//   - SolveSequential: Appendix-A sequential 3-approximation (2 for a
//     single tree).
//   - SolveExact: branch-and-bound optimum for small instances.
//   - SolveGreedy: profit-greedy baseline.
//   - SolvePanconesiSozio: the single-stage 20+ε baseline on lines.
//
// Every result carries a weak-duality certificate: DualUB ≥ p(Opt), so
// CertifiedRatio = DualUB/Profit bounds the true approximation ratio of
// that specific run.
//
// Quickstart:
//
//	tree, _ := treesched.NewTree(6, [][2]int{{0, 1}, {1, 2}, {1, 3}, {3, 4}, {3, 5}})
//	p := &treesched.Problem{
//	    Kind:        treesched.KindTree,
//	    NumVertices: 6,
//	    Trees:       []*treesched.Tree{tree},
//	    Demands: []treesched.Demand{
//	        {ID: 0, U: 0, V: 4, Profit: 3, Height: 1, Access: []int{0}},
//	        {ID: 1, U: 2, V: 5, Profit: 2, Height: 1, Access: []int{0}},
//	    },
//	}
//	res, err := treesched.SolveTreeUnit(p, treesched.Options{Epsilon: 0.25})
//
// To solve one problem many times (different algorithms, seeds or
// epsilons), compile it once and reuse the compiled form:
//
//	c, _ := treesched.CompileProblem(p)
//	r1, _ := c.TreeUnit(treesched.Options{Seed: 1})
//	r2, _ := c.TreeUnit(treesched.Options{Seed: 2})
//
// Serving: cmd/schedserver exposes the library as a concurrent HTTP
// service with a scenario library and a compiled-instance cache
// (NewEngine is the embeddable form). For example:
//
//	go run ./cmd/schedserver -addr :8080 &
//	curl -s localhost:8080/scenarios
//	curl -s -X POST localhost:8080/solve \
//	    -d '{"algo":"line-unit","scenario":"videowall-line","scenario_seed":7}'
//
// Equal requests return byte-identical JSON, cold or cached.
package treesched

import (
	"math/rand"

	"treesched/internal/core"
	"treesched/internal/gen"
	"treesched/internal/graph"
	"treesched/internal/instance"
	"treesched/internal/online"
	"treesched/internal/scenario"
	"treesched/internal/service"
	"treesched/internal/verify"
)

// Problem is a complete scheduling input: networks, demands,
// accessibility, and optional per-edge capacities.
type Problem = instance.Problem

// Demand is one processor's job: endpoints (trees) or window (lines),
// profit, height, and the set of accessible networks.
type Demand = instance.Demand

// Instance is a demand instance: one concrete placement of a demand.
type Instance = instance.Inst

// Tree is an undirected tree network.
type Tree = graph.Tree

// Problem kinds.
const (
	// KindTree marks tree-network problems (§2 of the paper).
	KindTree = instance.KindTree
	// KindLine marks line-network problems with windows (§7).
	KindLine = instance.KindLine
)

// NewTree builds a tree network over n vertices from n-1 undirected edges.
func NewTree(n int, edges [][2]int) (*Tree, error) { return graph.NewTree(n, edges) }

// NewPath builds the path graph 0-1-...-(n-1).
func NewPath(n int) *Tree { return graph.NewPath(n) }

// Result is an algorithm outcome: the selected instances, their profit,
// and the weak-duality certificate.
type Result = core.Result

// DistributedResult couples a Result with the measured network cost of
// the message-passing execution: Net.Rounds (synchronous communication
// rounds — the quantity bounded by Theorem 5.3), Net.Messages
// (point-to-point deliveries), Net.Entries (payload entries delivered,
// each O(log m + log pmax) bits), and Net.Aggregations (global OR
// reductions; zero under Options.FixedRounds). See the internal/dist
// package comment for the precise accounting rules.
type DistributedResult = core.DistributedResult

// Options configures a solver run (epsilon, seed, trace collection,
// decomposition choice). For the distributed drivers, DistWorkers picks
// the BSP engine: the default sharded worker pool runs 100k-processor
// networks on a handful of goroutines; a negative value selects the
// goroutine-per-processor reference runtime. Results and network Stats
// are byte-identical either way.
type Options = core.Options

// SolveTreeUnit runs the (7+ε)-approximation for unit-height demands on
// tree networks (Theorem 5.3).
func SolveTreeUnit(p *Problem, opts Options) (*Result, error) { return core.TreeUnit(p, opts) }

// SolveLineUnit runs the (4+ε)-approximation for unit-height demands on
// line networks with windows (Theorem 7.1).
func SolveLineUnit(p *Problem, opts Options) (*Result, error) { return core.LineUnit(p, opts) }

// SolveNarrow runs the narrow-instance algorithm (Lemma 6.2); every
// demand's effective height must be ≤ 1/2.
func SolveNarrow(p *Problem, opts Options) (*Result, error) { return core.NarrowOnly(p, opts) }

// SolveArbitrary runs the combined arbitrary-height algorithm
// (Theorems 6.3 and 7.2), including non-uniform edge capacities.
func SolveArbitrary(p *Problem, opts Options) (*Result, error) { return core.Arbitrary(p, opts) }

// SolveSequential runs the Appendix-A sequential algorithm (unit heights,
// tree networks): 3-approximation, 2 for a single tree.
func SolveSequential(p *Problem, opts Options) (*Result, error) { return core.Sequential(p, opts) }

// SolveExact computes the optimum by branch and bound (small instances
// only; the problem is NP-hard). maxNodes caps the search; 0 = default.
func SolveExact(p *Problem, maxNodes int64) (*Result, error) { return core.Exact(p, maxNodes) }

// SolveGreedy runs the profit-greedy baseline.
func SolveGreedy(p *Problem) (*Result, error) { return core.Greedy(p) }

// SolvePanconesiSozio runs the single-stage (20+ε) baseline of [15,16] on
// unit-height line networks.
func SolvePanconesiSozio(p *Problem, opts Options) (*Result, error) {
	return core.PanconesiSozioUnit(p, opts)
}

// SolveSequentialLine runs the classical sequential 2-approximation for
// unit-height line networks with windows (Bar-Noy et al. / Berman–Dasgupta
// style, reformulated in the two-phase framework).
func SolveSequentialLine(p *Problem, opts Options) (*Result, error) {
	return core.SequentialLine(p, opts)
}

// SolveDistributedPanconesiSozio is the message-passing driver of the
// Panconesi–Sozio baseline.
func SolveDistributedPanconesiSozio(p *Problem, opts Options) (*DistributedResult, error) {
	return core.DistributedPanconesiSozio(p, opts)
}

// SolveDistributedUnit runs the unit-height algorithm as a real
// message-passing protocol on a synchronous BSP simulation — one
// goroutine per processor, communication only between processors sharing
// a resource — and reports rounds, messages, payload entries and global
// aggregations. Same selections as the centralized solver for equal
// seeds; with Options.FixedRounds it runs the paper's deterministic
// schedule (zero aggregations).
func SolveDistributedUnit(p *Problem, opts Options) (*DistributedResult, error) {
	return core.DistributedUnit(p, opts)
}

// SolveDistributedNarrow is the message-passing driver of SolveNarrow.
func SolveDistributedNarrow(p *Problem, opts Options) (*DistributedResult, error) {
	return core.DistributedNarrow(p, opts)
}

// VerifySolution checks feasibility of a selection against the problem:
// accessibility, one placement per demand, windows, and bandwidth.
func VerifySolution(p *Problem, sel []Instance) error { return verify.Solution(p, sel) }

// TreeWorkload parameterizes GenerateTreeProblem.
type TreeWorkload = gen.TreeConfig

// LineWorkload parameterizes GenerateLineProblem.
type LineWorkload = gen.LineConfig

// GenerateTreeProblem draws a random tree-network problem.
func GenerateTreeProblem(cfg TreeWorkload, rng *rand.Rand) *Problem { return gen.TreeProblem(cfg, rng) }

// GenerateLineProblem draws a random line-network problem.
func GenerateLineProblem(cfg LineWorkload, rng *rand.Rand) *Problem { return gen.LineProblem(cfg, rng) }

// CompiledProblem is the reusable compiled form of one problem: paths,
// critical sets π(d), layer groups and conflict structures built once,
// with every solver available as a method (compile once, solve many).
type CompiledProblem = core.Compiled

// CompileProblem validates and compiles p for repeated solving.
func CompileProblem(p *Problem) (*CompiledProblem, error) { return core.Compile(p, 0) }

// CompileBatch compiles many problems on a bounded worker pool (workers:
// 0 = GOMAXPROCS, 1 = serial) and eagerly builds each model. Results and
// errors come back in input order, one slot per problem; a failed slot is
// a nil CompiledProblem with its error. Each compiled model is
// byte-identical to the one CompileProblem would build serially.
func CompileBatch(ps []*Problem, workers int) ([]*CompiledProblem, []error) {
	return core.CompileBatch(ps, 0, workers)
}

// SolveBatch runs fn over many compiled problems on a bounded worker pool
// (workers: 0 = GOMAXPROCS, 1 = serial), collecting results and errors in
// input order. Solves draw from each compilation's pooled scratch, so a
// warm batch allocates almost nothing beyond its results. Nil slots in cs
// (CompileBatch failures) are skipped.
func SolveBatch(cs []*CompiledProblem, workers int, fn func(i int, c *CompiledProblem) (*Result, error)) ([]*Result, []error) {
	return core.SolveBatch(cs, workers, fn)
}

// Engine is the concurrent scheduling service: a bounded worker pool, a
// compiled-instance LRU cache keyed on a canonical problem hash, full
// result memoization, and structured metrics. cmd/schedserver serves it
// over HTTP; Engine.Handler returns the same API for embedding.
type Engine = service.Engine

// EngineConfig sizes an Engine (zero value = defaults).
type EngineConfig = service.Config

// SolveRequest is one service solve job (inline problem or named
// scenario).
type SolveRequest = service.Request

// SolveResponse is the deterministic solver output for a SolveRequest.
type SolveResponse = service.Response

// BatchResult is one request's outcome from Engine.SolveBatch.
type BatchResult = service.BatchResult

// NewEngine builds a scheduling service engine.
func NewEngine(cfg EngineConfig) *Engine { return service.New(cfg) }

// Algorithms lists the service's algorithm registry: every Solve* entry
// point of this package by name.
func Algorithms() []string { return service.Algorithms() }

// Session is a dynamic scheduling session (internal/online): open it
// against a fixed network, stream add/remove job events, and resolve
// schedules recomputed by delta recompilation — only the compiled rows
// touched by the arrivals and departures are rebuilt
// (CompiledProblem.WithJobs), with a fall back to a full recompile past
// a churn threshold. Schedules are byte-identical to compiling and
// solving the current job set from scratch.
type Session = online.Session

// SessionConfig parameterizes a Session (algorithm, epsilon, seed,
// churn threshold, job limit).
type SessionConfig = online.Config

// SessionJob is one client-visible unit of work: a stable id plus the
// demand payload.
type SessionJob = online.Job

// SessionEvent is one element of a session's input stream
// (op "add" | "remove" | "resolve").
type SessionEvent = online.Event

// OpenSession opens a dynamic session on network's trees or timeline
// (demands already present become the initial job set).
func OpenSession(network *Problem, cfg SessionConfig) (*Session, error) {
	return online.NewSession(network, cfg)
}

// SessionAlgorithms lists the algorithms a Session can dispatch.
func SessionAlgorithms() []string { return online.Algorithms() }

// Scenario is a named, parameterized workload preset tied to a paper
// section or experiment (see internal/scenario).
type Scenario = scenario.Scenario

// ScenarioParams overrides a preset's default sizing.
type ScenarioParams = scenario.Params

// Scenarios returns the preset library in name order.
func Scenarios() []*Scenario { return scenario.All() }

// LookupScenario finds a preset by name.
func LookupScenario(name string) (*Scenario, bool) { return scenario.Get(name) }
