package treesched_test

import (
	"math/rand"
	"testing"

	"treesched"
)

// TestQuickstart exercises the doc-comment example end to end.
func TestQuickstart(t *testing.T) {
	tree, err := treesched.NewTree(6, [][2]int{{0, 1}, {1, 2}, {1, 3}, {3, 4}, {3, 5}})
	if err != nil {
		t.Fatal(err)
	}
	p := &treesched.Problem{
		Kind:        treesched.KindTree,
		NumVertices: 6,
		Trees:       []*treesched.Tree{tree},
		Demands: []treesched.Demand{
			{ID: 0, U: 0, V: 4, Profit: 3, Height: 1, Access: []int{0}},
			{ID: 1, U: 2, V: 5, Profit: 2, Height: 1, Access: []int{0}},
		},
	}
	res, err := treesched.SolveTreeUnit(p, treesched.Options{Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if err := treesched.VerifySolution(p, res.Selected); err != nil {
		t.Fatal(err)
	}
	// Paths 0-1-3-4 and 2-1-3-5 share edge 1-3: only one demand fits, and
	// the dual certificate must bracket the optimum (profit 3).
	if len(res.Selected) != 1 {
		t.Fatalf("selected %d demands, want 1", len(res.Selected))
	}
	if res.DualUB < 3-1e-9 || res.Profit > 3 {
		t.Fatalf("profit %g, dual UB %g", res.Profit, res.DualUB)
	}
}

func TestFacadeSolversRun(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tp := treesched.GenerateTreeProblem(treesched.TreeWorkload{
		N: 16, Trees: 2, Demands: 10, Unit: true,
	}, rng)
	lpb := treesched.GenerateLineProblem(treesched.LineWorkload{
		Slots: 20, Resources: 2, Demands: 8, Unit: true,
	}, rng)
	mixed := treesched.GenerateTreeProblem(treesched.TreeWorkload{
		N: 16, Trees: 2, Demands: 10, HMin: 0.1, HMax: 1,
	}, rng)

	for name, run := range map[string]func() (*treesched.Result, error){
		"tree-unit":  func() (*treesched.Result, error) { return treesched.SolveTreeUnit(tp, treesched.Options{}) },
		"line-unit":  func() (*treesched.Result, error) { return treesched.SolveLineUnit(lpb, treesched.Options{}) },
		"arbitrary":  func() (*treesched.Result, error) { return treesched.SolveArbitrary(mixed, treesched.Options{}) },
		"sequential": func() (*treesched.Result, error) { return treesched.SolveSequential(tp, treesched.Options{}) },
		"exact":      func() (*treesched.Result, error) { return treesched.SolveExact(tp, 0) },
		"greedy":     func() (*treesched.Result, error) { return treesched.SolveGreedy(tp) },
		"ps":         func() (*treesched.Result, error) { return treesched.SolvePanconesiSozio(lpb, treesched.Options{}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var p *treesched.Problem
		switch name {
		case "line-unit", "ps":
			p = lpb
		case "arbitrary":
			p = mixed
		default:
			p = tp
		}
		if err := treesched.VerifySolution(p, res.Selected); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	d, err := treesched.SolveDistributedUnit(tp, treesched.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.Net.Rounds == 0 {
		t.Fatal("distributed run reported zero rounds")
	}
}

func TestFacadeLineExtras(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lpb := treesched.GenerateLineProblem(treesched.LineWorkload{
		Slots: 24, Resources: 2, Demands: 10, Unit: true, MaxProc: 6,
	}, rng)
	seq, err := treesched.SolveSequentialLine(lpb, treesched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := treesched.VerifySolution(lpb, seq.Selected); err != nil {
		t.Fatal(err)
	}
	if seq.Bound != 2 {
		t.Fatalf("sequential-line bound %g want 2", seq.Bound)
	}
	dps, err := treesched.SolveDistributedPanconesiSozio(lpb, treesched.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := treesched.VerifySolution(lpb, dps.Selected); err != nil {
		t.Fatal(err)
	}
	narrow := treesched.GenerateLineProblem(treesched.LineWorkload{
		Slots: 24, Resources: 2, Demands: 8, HMin: 0.2, HMax: 0.5, MaxProc: 6,
	}, rng)
	dn, err := treesched.SolveDistributedNarrow(narrow, treesched.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := treesched.VerifySolution(narrow, dn.Selected); err != nil {
		t.Fatal(err)
	}
	fixed, err := treesched.SolveDistributedUnit(lpb, treesched.Options{Seed: 3, FixedRounds: true})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Net.Aggregations != 0 {
		t.Fatal("fixed-rounds run used aggregations")
	}
	if _, err := treesched.SolveNarrow(lpb, treesched.Options{}); err == nil {
		t.Fatal("SolveNarrow accepted unit heights > 1/2")
	}
}
