// Command schedserver serves the scheduling library over HTTP: a
// concurrent solve engine with a compiled-instance cache, full-result
// memoization, a scenario preset library and structured metrics.
//
// Usage:
//
//	schedserver [-addr :8080] [-workers N] [-compile-workers N]
//	            [-compiled-cache 64] [-result-cache 512] [-cache-shards N]
//	            [-max-demands 20000] [-pprof]
//	            [-trace-sample 0.01] [-slow-ms 500] [-recorder 128]
//	            [-log-requests PATH|-]
//
// API:
//
//	POST /solve      {"algo":"tree-unit","problem":{...}} or
//	                 {"algo":"line-unit","scenario":"videowall-line","scenario_seed":7}
//	POST /batch      NDJSON stream of solve requests -> NDJSON responses
//	GET  /scenarios  preset library + algorithm registry
//	GET  /healthz    liveness
//	GET  /metrics    request/cache/latency counters (JSON), SLO burn rates
//	GET  /metrics.prom  the same counters in Prometheus text format
//	GET  /debug/requests       flight recorder: active + retained requests
//	GET  /debug/requests/{id}  one request's record / span timeline
//	GET  /debug/events         structured event log
//	GET  /debug/pprof/  runtime profiles (only with -pprof)
//
// Responses are deterministic: equal requests (same problem or scenario
// seed, algorithm and options) return byte-identical JSON, cold or
// cached. SIGINT/SIGTERM trigger a graceful drain.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"treesched/internal/service"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		workers        = flag.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
		compileWorkers = flag.Int("compile-workers", 0, "model-build fan-out per compilation (0 = GOMAXPROCS, 1 = serial)")
		compiledCache  = flag.Int("compiled-cache", 64, "compiled-model cache entries")
		resultCache    = flag.Int("result-cache", 512, "memoized-result cache entries")
		cacheShards    = flag.Int("cache-shards", 0, "lock shards per cache (0 = GOMAXPROCS-derived, 1 = single-lock oracle path)")
		maxDemands     = flag.Int("max-demands", 20000, "reject problems with more demands")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		enablePprof    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default: profiles expose internals)")
		traceSample    = flag.Float64("trace-sample", 0.01, "probability an ordinary request keeps its span timeline in /debug/requests (slow and errored requests always keep theirs; 0 disables span recording entirely)")
		slowMs         = flag.Int("slow-ms", 500, "requests slower than this land in the flight recorder's slow class")
		recorderSize   = flag.Int("recorder", 128, "flight-recorder retained requests per class (recent/slow/error)")
		logRequests    = flag.String("log-requests", "", "write one NDJSON line per completed request to this path (\"-\" = stderr)")
	)
	flag.Parse()

	cfg := service.Config{
		Workers:           *workers,
		CompileWorkers:    *compileWorkers,
		CompiledCacheSize: *compiledCache,
		ResultCacheSize:   *resultCache,
		CacheShards:       *cacheShards,
		MaxDemands:        *maxDemands,
		TraceSample:       *traceSample,
		SlowThreshold:     time.Duration(*slowMs) * time.Millisecond,
		RecorderRequests:  *recorderSize,
	}
	if *logRequests != "" {
		if *logRequests == "-" {
			cfg.RequestLog = os.Stderr
		} else {
			f, err := os.OpenFile(*logRequests, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatalf("schedserver: -log-requests: %v", err)
			}
			defer f.Close()
			cfg.RequestLog = f
		}
	}
	engine := service.New(cfg)

	handler := engine.Handler()
	if *enablePprof {
		// Wrap rather than touch the engine mux: the service package stays
		// free of debug endpoints, and the opt-in is visible in one place.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("schedserver: pprof enabled at /debug/pprof/")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("schedserver: listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatalf("schedserver: %v", err)
	case <-ctx.Done():
	}

	log.Printf("schedserver: draining (up to %s)...", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("schedserver: shutdown: %v", err)
	}
	engine.Close()
	log.Printf("schedserver: bye")
}
