package main

import (
	"encoding/json"
	"fmt"
	"os"

	"treesched/internal/bench"
)

// runLoadBaseline is the `-load` mode: drive internal/service with
// open-loop traffic (Poisson and bursty arrivals over a Zipf-weighted
// scenario×algorithm mix with a session share) and either write the
// BENCH_load.json report — saturation rps, open-loop p50/p99,
// coalescing and cache-hit rates, sharded-vs-single-lock contention —
// or, with -check, compare against a checked-in baseline and exit
// non-zero on a sanity or regression failure (see bench.CheckLoad).
func runLoadBaseline(out, check string, quick bool) {
	report, err := bench.LoadBench(quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}

	if check != "" {
		raw, err := os.ReadFile(check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedbench:", err)
			os.Exit(1)
		}
		var baseline bench.LoadReport
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "schedbench: parsing %s: %v\n", check, err)
			os.Exit(1)
		}
		if err := bench.CheckLoad(report, &baseline); err != nil {
			fmt.Fprintln(os.Stderr, "schedbench:", err)
			os.Exit(1)
		}
		fmt.Printf("schedbench: load gate passed against %s across %d traffic entries, %d shard entries\n",
			check, len(report.Entries), len(report.ShardEntries))
		return
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
}
