// Command schedbench regenerates the experiment tables of EXPERIMENTS.md:
// one experiment per quantitative claim of the paper (approximation
// bounds, round complexity, decomposition quality, ablations).
//
// Usage:
//
//	schedbench [-e all|E1|E2|...|E12] [-trials N] [-quick] [-seed S] [-o file]
//	schedbench -service [-quick] [-o BENCH_service.json]
//	schedbench -core [-quick] [-o BENCH_core.json | -check BENCH_core.json]
//	schedbench -online [-quick] [-o BENCH_online.json | -check BENCH_online.json]
//	schedbench -dist [-quick] [-o BENCH_dist.json | -check BENCH_dist.json |
//	                 -smoke line-100k]
//	schedbench -load [-quick] [-o BENCH_load.json | -check BENCH_load.json]
//
// The -service mode benchmarks the serving layer (internal/service)
// instead: requests/sec for cold, compiled-cache-warm and
// result-cache-warm solves across three scenarios. The -core mode
// benchmarks the solver itself — ns/solve and allocs/solve per
// scenario×algorithm, cold (fresh compile) and warm (compiled reuse) —
// plus the parallel-compile scale tier: serial vs full-width model
// builds with per-phase breakdowns (decomp/layer/path/index ns) on the
// scale presets, and CompileBatch/SolveBatch vs the one-at-a-time loop.
// With -check it fails on a >25% cold-path regression against the
// checked-in baseline, and on ≥4-core runners additionally requires a
// ≥2x parallel-compile speedup on at least one scale preset (and no
// >25% speedup slide against a multicore baseline). The -online mode
// benchmarks the dynamic-session
// path: delta re-solve (core.Compiled.WithJobs) vs cold compile+solve
// per scenario × churn rate, gating the speedups with -check. The -dist
// mode benchmarks the BSP substrate: the sharded worker-pool engine vs
// the goroutine-per-processor anchor, up to the 10^5-processor scale
// presets, gating speedup and the workers+O(1) goroutine bound with
// -check; -smoke runs one scale preset end to end on the pool engine.
// The -load mode drives the serving layer with open-loop traffic —
// Poisson and bursty arrivals over a Zipf-weighted scenario×algorithm
// mix with a dynamic-session share — reporting saturation rps,
// open-loop p50/p99 latency, singleflight coalescing and cache-hit
// rates, and the sharded-vs-single-lock cache contention speedup;
// -check gates report sanity and (GOMAXPROCS-matched) p99/saturation
// regressions against the checked-in BENCH_load.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"treesched/internal/bench"
)

func main() {
	var (
		exp     = flag.String("e", "all", "experiment id (E1..E12) or 'all'")
		trials  = flag.Int("trials", 0, "trials per table cell (0 = default)")
		quick   = flag.Bool("quick", false, "shrink workloads for a fast pass")
		seed    = flag.Int64("seed", 1, "base RNG seed")
		out     = flag.String("o", "", "write output to file instead of stdout")
		service = flag.Bool("service", false, "benchmark the serving layer instead of E1-E12")
		coreRun = flag.Bool("core", false, "benchmark the solver cold path instead of E1-E12")
		online  = flag.Bool("online", false, "benchmark delta re-solve vs cold solve instead of E1-E12")
		distRun = flag.Bool("dist", false, "benchmark the BSP worker-pool engine vs the goroutine-per-processor anchor")
		loadRun = flag.Bool("load", false, "drive the serving layer with open-loop traffic and report latency/coalescing/contention")
		smoke   = flag.String("smoke", "", "with -dist: run one scale preset on the pool engine and print a summary")
		check   = flag.String("check", "", "with -core/-online/-dist/-load: compare against the named baseline and fail on regression")
	)
	flag.Parse()

	if *service {
		runServiceBaseline(*out, *quick)
		return
	}
	if *coreRun {
		runCoreBaseline(*out, *check, *quick)
		return
	}
	if *online {
		runOnlineBaseline(*out, *check, *quick)
		return
	}
	if *distRun {
		runDistBaseline(*out, *check, *smoke, *quick)
		return
	}
	if *loadRun {
		runLoadBaseline(*out, *check, *quick)
		return
	}

	cfg := bench.Config{Seed: *seed, Trials: *trials, Quick: *quick}
	runners := map[string]func(bench.Config) *bench.Table{
		"E1":  bench.E1TreeUnitRatios,
		"E2":  bench.E2Rounds,
		"E3":  bench.E3Narrow,
		"E4":  bench.E4Arbitrary,
		"E5":  bench.E5LineUnit,
		"E6":  bench.E6LineArbitrary,
		"E7":  bench.E7Decomp,
		"E8":  bench.E8Steps,
		"E9":  bench.E9Sequential,
		"E10": bench.E10Capacitated,
		"E11": bench.E11DecompAblation,
		"E12": bench.E12StageAblation,
	}

	var tables []*bench.Table
	switch strings.ToLower(*exp) {
	case "all":
		tables = bench.All(cfg)
	default:
		run, ok := runners[strings.ToUpper(*exp)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; want E1..E12 or all\n", *exp)
			os.Exit(2)
		}
		tables = []*bench.Table{run(cfg)}
	}

	var b strings.Builder
	if *out != "" {
		which := "tables E1–E12, one per quantitative claim of the paper"
		if strings.ToLower(*exp) != "all" {
			which = "table " + strings.ToUpper(*exp)
		}
		fmt.Fprintf(&b, "# EXPERIMENTS\n\n")
		fmt.Fprintf(&b, "Experiment %s\n", which)
		fmt.Fprintf(&b, "(see DESIGN.md's per-experiment index). Generated — do not edit:\n\n")
		quickFlag := ""
		if *quick {
			quickFlag = " -quick"
		}
		fmt.Fprintf(&b, "    go run ./cmd/schedbench -e %s -trials %d -seed %d%s -o %s\n\n",
			*exp, *trials, *seed, quickFlag, *out)
	}
	for _, t := range tables {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	if *out == "" {
		fmt.Print(b.String())
		return
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
