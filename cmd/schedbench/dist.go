package main

import (
	"encoding/json"
	"fmt"
	"os"

	"treesched/internal/bench"
)

// runDistBaseline is the `-dist` mode: measure the BSP substrate — the
// sharded worker-pool engine against the goroutine-per-processor anchor
// (see internal/bench.DistBench) — and either write the BENCH_dist.json
// report or, with -check, compare the gate tier against a checked-in
// baseline and exit non-zero on a regression (>25% loss of the
// pool-vs-blocking speedup, a catastrophic rounds/sec collapse, or a
// broken workers+O(1) goroutine bound — see bench.CheckDist). With
// -smoke, run one scale preset at full size on the pool engine only and
// print a one-line summary (the CI large-network smoke).
func runDistBaseline(out, check, smoke string, quick bool) {
	if smoke != "" {
		line, err := bench.DistSmoke(smoke)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedbench:", err)
			os.Exit(1)
		}
		fmt.Println("schedbench:", line)
		return
	}

	report, err := bench.DistBench(quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}

	if check != "" {
		raw, err := os.ReadFile(check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedbench:", err)
			os.Exit(1)
		}
		var baseline bench.DistReport
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "schedbench: parsing %s: %v\n", check, err)
			os.Exit(1)
		}
		if err := bench.CheckDist(report, &baseline, 0.25); err != nil {
			fmt.Fprintln(os.Stderr, "schedbench:", err)
			os.Exit(1)
		}
		fmt.Printf("schedbench: distributed runtime within bounds of %s across %d entries\n",
			check, len(report.Entries))
		return
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
}
