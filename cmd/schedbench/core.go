package main

import (
	"encoding/json"
	"fmt"
	"os"

	"treesched/internal/bench"
)

// runCoreBaseline is the `-core` mode: measure the solver cold path per
// scenario×algo plus the parallel-compile scale tier (serial vs
// full-width model builds with per-phase breakdowns, and batch vs loop;
// see internal/bench.CoreBench) and either write the BENCH_core.json
// report or, with -check, compare against a checked-in baseline and exit
// non-zero on a cold-path regression (>25% on the hardware-independent
// allocs/solve, a catastrophic wall-clock blowup, or — on ≥4-core
// runners — a missing/regressed parallel-compile speedup; see
// bench.CheckCore and bench.checkScale).
func runCoreBaseline(out, check string, quick bool) {
	report, err := bench.CoreBench(quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}

	if check != "" {
		raw, err := os.ReadFile(check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedbench:", err)
			os.Exit(1)
		}
		var baseline bench.CoreReport
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "schedbench: parsing %s: %v\n", check, err)
			os.Exit(1)
		}
		if err := bench.CheckCore(report, &baseline, 0.25); err != nil {
			fmt.Fprintln(os.Stderr, "schedbench:", err)
			os.Exit(1)
		}
		fmt.Printf("schedbench: cold path within bounds of %s across %d pairs, %d scale presets, %d batch presets\n",
			check, len(report.Entries), len(report.ScaleEntries), len(report.BatchEntries))
		return
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
}
