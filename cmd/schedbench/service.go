package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"treesched"
)

// serviceBaseline measures the serving layer's throughput in three cache
// regimes across named scenarios and writes a JSON baseline
// (BENCH_service.json) so future PRs have a perf trajectory to beat:
//
//   - cold_rps: every request is a new problem (compiled + result miss);
//   - compiled_warm_rps: same problem, fresh solver seed (compiled hit);
//   - result_warm_rps: identical request (full result memoization).
type serviceBaseline struct {
	Note       string                  `json:"note"`
	Regenerate string                  `json:"regenerate"`
	GoVersion  string                  `json:"go_version"`
	GOMAXPROCS int                     `json:"gomaxprocs"`
	Scenarios  []serviceScenarioResult `json:"scenarios"`
}

type serviceScenarioResult struct {
	Scenario        string  `json:"scenario"`
	Algo            string  `json:"algo"`
	ColdRPS         float64 `json:"cold_rps"`
	CompiledWarmRPS float64 `json:"compiled_warm_rps"`
	ResultWarmRPS   float64 `json:"result_warm_rps"`
	CompiledSpeedup float64 `json:"compiled_speedup"`
	ResultSpeedup   float64 `json:"result_speedup"`
}

// benchScenarios are the three presets the baseline tracks: one line
// workload, one tree workload, one capacitated workload.
var benchScenarios = []string{"videowall-line", "caterpillar-backbone", "capacitated-tree"}

func runServiceBaseline(out string, quick bool) {
	cold, warm := 40, 400
	if quick {
		cold, warm = 5, 25
	}
	report := serviceBaseline{
		Note: "requests/sec through internal/service per cache regime; " +
			"cold = new problem per request, compiled_warm = compiled-model cache hit, " +
			"result_warm = memoized response",
		Regenerate: "go run ./cmd/schedbench -service -o BENCH_service.json",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	ctx := context.Background()
	for _, name := range benchScenarios {
		s, ok := treesched.LookupScenario(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "schedbench: unknown scenario %q\n", name)
			os.Exit(1)
		}
		e := treesched.NewEngine(treesched.EngineConfig{})
		req := func(scenSeed int64, solverSeed uint64) *treesched.SolveRequest {
			return &treesched.SolveRequest{
				Algo: s.DefaultAlgo, Scenario: name,
				ScenarioSeed: scenSeed, Seed: solverSeed,
			}
		}
		solve := func(r *treesched.SolveRequest) {
			if _, err := e.Solve(ctx, r); err != nil {
				fmt.Fprintf(os.Stderr, "schedbench: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		rps := func(n int, mk func(i int) *treesched.SolveRequest) float64 {
			begin := time.Now()
			for i := 0; i < n; i++ {
				solve(mk(i))
			}
			return float64(n) / time.Since(begin).Seconds()
		}

		res := serviceScenarioResult{Scenario: name, Algo: s.DefaultAlgo}
		// Cold uses scenario seeds ≥ 2 so no cold request collides with
		// the warm phases below (which all use scenario seed 1) — every
		// warm sample must exercise its own cache regime, nothing else.
		res.ColdRPS = rps(cold, func(i int) *treesched.SolveRequest { return req(int64(i)+2, 1) })
		solve(req(1, 0)) // ensure scenario seed 1 is compiled
		res.CompiledWarmRPS = rps(warm, func(i int) *treesched.SolveRequest { return req(1, uint64(i)+1) })
		res.ResultWarmRPS = rps(warm, func(i int) *treesched.SolveRequest { return req(1, 1) })
		if res.ColdRPS > 0 {
			res.CompiledSpeedup = res.CompiledWarmRPS / res.ColdRPS
			res.ResultSpeedup = res.ResultWarmRPS / res.ColdRPS
		}
		e.Close()
		report.Scenarios = append(report.Scenarios, res)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
}
