package main

import (
	"encoding/json"
	"fmt"
	"os"

	"treesched/internal/bench"
)

// runOnlineBaseline is the `-online` mode: measure delta re-solve vs
// cold compile+solve per scenario × churn rate (see
// internal/bench.OnlineBench) and either write the BENCH_online.json
// report or, with -check, compare against a checked-in baseline and exit
// non-zero when the delta-recompilation advantage regressed (>25% on the
// hardware-independent allocation-count speedups, or a catastrophic
// wall-clock speedup collapse — see bench.CheckOnline).
func runOnlineBaseline(out, check string, quick bool) {
	report, err := bench.OnlineBench(quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}

	if check != "" {
		raw, err := os.ReadFile(check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedbench:", err)
			os.Exit(1)
		}
		var baseline bench.OnlineReport
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "schedbench: parsing %s: %v\n", check, err)
			os.Exit(1)
		}
		if err := bench.CheckOnline(report, &baseline, 0.25); err != nil {
			fmt.Fprintln(os.Stderr, "schedbench:", err)
			os.Exit(1)
		}
		fmt.Printf("schedbench: delta-recompile speedups within bounds of %s across %d cells\n",
			check, len(report.Entries))
		return
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
}
