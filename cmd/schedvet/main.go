// Command schedvet is the schedlint multichecker: five analyzers that
// machine-check this repo's determinism and concurrency contracts.
//
// Run it directly over packages:
//
//	go run ./cmd/schedvet ./...          # human-readable, exit 2 on findings
//	go run ./cmd/schedvet -json ./...    # machine-readable findings on stdout
//
// or as a vet tool, which includes in-package test files and caches
// results under the build cache (the CI leg):
//
//	go build -o /tmp/schedvet ./cmd/schedvet
//	go vet -vettool=/tmp/schedvet ./...
//
// See the "Static analysis" section of DESIGN.md for each analyzer's
// contract and escape hatch.
package main

import (
	"treesched/internal/lint/detrange"
	"treesched/internal/lint/driver"
	"treesched/internal/lint/niltrace"
	"treesched/internal/lint/respfreeze"
	"treesched/internal/lint/sharddiscipline"
	"treesched/internal/lint/wallclock"
)

func main() {
	driver.Main(
		detrange.Analyzer,
		wallclock.Analyzer,
		sharddiscipline.Analyzer,
		niltrace.Analyzer,
		respfreeze.Analyzer,
	)
}
