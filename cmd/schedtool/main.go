// Command schedtool generates, solves and verifies scheduling problems as
// JSON, exposing the full library from the command line.
//
// Usage:
//
//	schedtool gen  -kind tree|line [-n 32] [-nets 2] [-demands 20] [-unit]
//	               [-hmin 0.1] [-hmax 1] [-cap 0] [-seed 1] > problem.json
//	schedtool solve -algo tree-unit|line-unit|arbitrary|narrow|sequential|
//	                     exact|greedy|ps|dist-unit|dist-narrow|dist-ps
//	               [-eps 0.25] [-seed 1] < problem.json
//	schedtool verify -solution sol.json < problem.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"treesched"
	"treesched/internal/conflict"
	"treesched/internal/core"
	"treesched/internal/model"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "solve":
		cmdSolve(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: schedtool gen|solve|verify|stats [flags]")
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "schedtool:", err)
	os.Exit(1)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "tree", "tree or line")
	n := fs.Int("n", 32, "vertices (tree) or timeslots (line)")
	nets := fs.Int("nets", 2, "number of networks/resources")
	demands := fs.Int("demands", 20, "number of demands")
	unit := fs.Bool("unit", false, "unit heights")
	hmin := fs.Float64("hmin", 0.1, "min height")
	hmax := fs.Float64("hmax", 1.0, "max height")
	capac := fs.Float64("cap", 0, "edge capacity (0 = uniform 1)")
	jitter := fs.Float64("jitter", 0, "capacity jitter")
	seed := fs.Int64("seed", 1, "rng seed")
	fs.Parse(args)

	rng := rand.New(rand.NewSource(*seed))
	var p *treesched.Problem
	switch *kind {
	case "tree":
		p = treesched.GenerateTreeProblem(treesched.TreeWorkload{
			N: *n, Trees: *nets, Demands: *demands, Unit: *unit,
			HMin: *hmin, HMax: *hmax, Capacity: *capac, CapJitter: *jitter,
		}, rng)
	case "line":
		p = treesched.GenerateLineProblem(treesched.LineWorkload{
			Slots: *n, Resources: *nets, Demands: *demands, Unit: *unit,
			HMin: *hmin, HMax: *hmax, Capacity: *capac, CapJitter: *jitter,
		}, rng)
	default:
		die(fmt.Errorf("unknown kind %q", *kind))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		die(err)
	}
}

// solveOutput is the JSON result envelope.
type solveOutput struct {
	Algorithm      string               `json:"algorithm"`
	Profit         float64              `json:"profit"`
	DualUpperBound float64              `json:"dual_upper_bound,omitempty"`
	CertifiedRatio float64              `json:"certified_ratio,omitempty"`
	Bound          float64              `json:"bound,omitempty"`
	Selected       []treesched.Instance `json:"selected"`
	Rounds         int                  `json:"rounds,omitempty"`
	Messages       int64                `json:"messages,omitempty"`
	Aggregations   int                  `json:"aggregations,omitempty"`
	PayloadEntries int64                `json:"payload_entries,omitempty"`
	// StepsPerStage[k][j] is the first-phase execution profile (with
	// -trace): while-loop iterations of stage j+1 in epoch k+1.
	StepsPerStage [][]int `json:"steps_per_stage,omitempty"`
	RaiseEvents   int     `json:"raise_events,omitempty"`
	MISPhases     int     `json:"mis_phases,omitempty"`
}

func cmdSolve(args []string) {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	algo := fs.String("algo", "arbitrary", "algorithm")
	eps := fs.Float64("eps", 0.25, "epsilon")
	seed := fs.Uint64("seed", 1, "MIS priority seed")
	fixed := fs.Bool("fixed", false, "fixed-rounds schedule for dist-* algorithms")
	trace := fs.Bool("trace", false, "include the first-phase execution profile")
	fs.Parse(args)

	p := readProblem(os.Stdin)
	opts := treesched.Options{Epsilon: *eps, Seed: *seed, FixedRounds: *fixed, CollectTrace: *trace}
	var (
		res *treesched.Result
		net *core.DistributedResult
		err error
	)
	switch *algo {
	case "tree-unit":
		res, err = treesched.SolveTreeUnit(p, opts)
	case "line-unit":
		res, err = treesched.SolveLineUnit(p, opts)
	case "arbitrary":
		res, err = treesched.SolveArbitrary(p, opts)
	case "narrow":
		res, err = treesched.SolveNarrow(p, opts)
	case "sequential":
		res, err = treesched.SolveSequential(p, opts)
	case "seq-line":
		res, err = treesched.SolveSequentialLine(p, opts)
	case "exact":
		res, err = treesched.SolveExact(p, 0)
	case "greedy":
		res, err = treesched.SolveGreedy(p)
	case "ps":
		res, err = treesched.SolvePanconesiSozio(p, opts)
	case "dist-unit":
		net, err = treesched.SolveDistributedUnit(p, opts)
		if net != nil {
			res = net.Result
		}
	case "dist-narrow":
		net, err = treesched.SolveDistributedNarrow(p, opts)
		if net != nil {
			res = net.Result
		}
	case "dist-ps":
		net, err = treesched.SolveDistributedPanconesiSozio(p, opts)
		if net != nil {
			res = net.Result
		}
	default:
		die(fmt.Errorf("unknown algorithm %q", *algo))
	}
	if err != nil {
		die(err)
	}
	if err := treesched.VerifySolution(p, res.Selected); err != nil {
		die(fmt.Errorf("solver emitted infeasible solution: %w", err))
	}
	out := solveOutput{
		Algorithm:      res.Name,
		Profit:         res.Profit,
		DualUpperBound: res.DualUB,
		CertifiedRatio: res.CertifiedRatio,
		Bound:          res.Bound,
		Selected:       res.Selected,
	}
	if net != nil {
		out.Rounds = net.Net.Rounds
		out.Messages = net.Net.Messages
		out.Aggregations = net.Net.Aggregations
		out.PayloadEntries = net.Net.Entries
	}
	if res.Trace != nil {
		out.StepsPerStage = res.Trace.StepsPerStage
		out.RaiseEvents = len(res.Trace.Events)
		out.MISPhases = res.Trace.MISPhases
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		die(err)
	}
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	solPath := fs.String("solution", "", "path to a solve output JSON")
	fs.Parse(args)
	if *solPath == "" {
		die(fmt.Errorf("verify needs -solution"))
	}
	p := readProblem(os.Stdin)
	data, err := os.ReadFile(*solPath)
	if err != nil {
		die(err)
	}
	var sol solveOutput
	if err := json.Unmarshal(data, &sol); err != nil {
		die(err)
	}
	if err := treesched.VerifySolution(p, sol.Selected); err != nil {
		die(err)
	}
	fmt.Printf("feasible: %d demands scheduled, profit %.3f\n", len(sol.Selected), sol.Profit)
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	fs.Parse(args)
	p := readProblem(os.Stdin)
	m, err := model.Build(p, model.Options{})
	if err != nil {
		die(err)
	}
	fmt.Printf("kind:          %v\n", p.Kind)
	fmt.Printf("networks:      %d\n", p.NumNetworks())
	fmt.Printf("demands:       %d\n", len(p.Demands))
	fmt.Printf("instances:     %d\n", len(m.Insts))
	fmt.Printf("edge space:    %d\n", m.EdgeSpace)
	fmt.Printf("layer groups:  %d\n", m.NumGroups)
	fmt.Printf("critical ∆:    %d\n", m.Delta)
	pmin, pmax := p.ProfitRange()
	fmt.Printf("profit spread: %.3g (%.3g..%.3g)\n", pmax/pmin, pmin, pmax)
	hmin, hmax := p.HeightRange()
	fmt.Printf("heights:       %.3g..%.3g (unit=%v)\n", hmin, hmax, p.UnitHeight())
	cg := conflict.Build(m)
	edges := 0
	maxDeg := 0
	for i := int32(0); int(i) < cg.N; i++ {
		edges += cg.Degree(i)
		if cg.Degree(i) > maxDeg {
			maxDeg = cg.Degree(i)
		}
	}
	fmt.Printf("conflicts:     %d edges, max degree %d\n", edges/2, maxDeg)
	for q, d := range m.Decomps {
		fmt.Printf("tree %d:        ideal decomposition depth %d, θ=%d\n", q, d.MaxDepth(), d.PivotSize())
	}
}

func readProblem(r io.Reader) *treesched.Problem {
	data, err := io.ReadAll(r)
	if err != nil {
		die(err)
	}
	var p treesched.Problem
	if err := json.Unmarshal(data, &p); err != nil {
		die(err)
	}
	return &p
}
