// Command schedtool generates, solves and verifies scheduling problems as
// JSON, exposing the full library from the command line.
//
// Usage:
//
//	schedtool gen  -kind tree|line [-n 32] [-nets 2] [-demands 20] [-unit]
//	               [-hmin 0.1] [-hmax 1] [-cap 0] [-seed 1] [-o problem.json]
//	schedtool gen  -scenario videowall-line [-seed 1] [-o problem.json]
//	               (named presets; see `schedtool scenarios`; explicit
//	               -n/-nets/-demands flags override the preset sizing)
//	schedtool solve -algo tree-unit|line-unit|arbitrary|narrow|sequential|
//	                     exact|greedy|ps|dist-unit|dist-narrow|dist-ps
//	               [-eps 0.25] [-seed 1] [-o result.json]
//	               [-trace-out timeline.json] < problem.json
//	               (-trace-out writes the solve's phase timeline — compile,
//	               phase1 epochs/stages, verify, phase2 — as telemetry JSON;
//	               the solver output is byte-identical with or without it)
//	schedtool verify -solution sol.json < problem.json
//	schedtool scenarios
//	schedtool trace  -scenario videowall-line [-seed 1] [-churn 0.1]
//	               [-batches 20] [-o trace.ndjson]
//	               (deterministic arrival/departure event stream for the
//	               online-session subsystem)
//	schedtool replay -trace trace.ndjson [-o outcomes.ndjson] [-q]
//	               (drive a trace through a dynamic session with delta
//	               recompilation; deterministic outcome NDJSON on stdout,
//	               per-event latency summary on stderr)
//
// Exit codes: 0 success, 1 operational error, 2 usage error,
// 3 infeasible solution (solve self-check or verify failure) — so the
// tool composes in scripts and CI.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"treesched"
	"treesched/internal/conflict"
	"treesched/internal/core"
	"treesched/internal/model"
	"treesched/internal/obs"
)

// exitInfeasible is the dedicated exit code for verification failures,
// distinct from operational errors (1) and usage errors (2).
const exitInfeasible = 3

// newFlagSet builds a subcommand FlagSet that reports bad flags through
// the documented exit-code contract instead of letting the flag package
// exit on its own: ContinueOnError hands the error back to parseFlags,
// which exits 2 (usage) with the subcommand's usage text — and 0 for an
// explicit -h/-help, which is a successful help request, not an error.
// flag.ExitOnError would exit 2 directly, bypassing main's control of
// the contract (and any future cleanup around it); every subcommand
// must build its FlagSet here so the contract stays pinned in one place
// (and in TestExitCodes).
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

// parseFlags applies the exit-code contract to a Parse result.
func parseFlags(fs *flag.FlagSet, args []string) {
	err := fs.Parse(args)
	if err == nil {
		return
	}
	if errors.Is(err, flag.ErrHelp) {
		os.Exit(0)
	}
	// flag already printed the error and usage to fs.Output (stderr).
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "solve":
		cmdSolve(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "scenarios":
		cmdScenarios()
	case "trace":
		cmdTrace(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: schedtool gen|solve|verify|stats|scenarios|trace|replay [flags]")
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "schedtool:", err)
	os.Exit(1)
}

func dieInfeasible(err error) {
	fmt.Fprintln(os.Stderr, "schedtool:", err)
	os.Exit(exitInfeasible)
}

// writeOutput writes JSON to -o's file, or stdout when path is empty.
func writeOutput(path string, v any) {
	var w io.Writer = os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			die(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				die(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		die(err)
	}
}

func cmdGen(args []string) {
	fs := newFlagSet("gen")
	kind := fs.String("kind", "tree", "tree or line")
	scen := fs.String("scenario", "", "generate a named preset instead (see `schedtool scenarios`)")
	n := fs.Int("n", 32, "vertices (tree) or timeslots (line)")
	nets := fs.Int("nets", 2, "number of networks/resources")
	demands := fs.Int("demands", 20, "number of demands")
	unit := fs.Bool("unit", false, "unit heights")
	hmin := fs.Float64("hmin", 0.1, "min height")
	hmax := fs.Float64("hmax", 1.0, "max height")
	capac := fs.Float64("cap", 0, "edge capacity (0 = uniform 1)")
	jitter := fs.Float64("jitter", 0, "capacity jitter")
	seed := fs.Int64("seed", 1, "rng seed")
	out := fs.String("o", "", "write output to file instead of stdout")
	parseFlags(fs, args)

	var p *treesched.Problem
	if *scen != "" {
		s, ok := treesched.LookupScenario(*scen)
		if !ok {
			die(fmt.Errorf("unknown scenario %q; run `schedtool scenarios` for the list", *scen))
		}
		// Explicitly set sizing flags override the preset defaults; the
		// remaining generation flags are fixed by the preset, so passing
		// them is an error rather than a silent no-op — as is an explicit
		// zero, which Params would otherwise read as "use the default".
		var params treesched.ScenarioParams
		var rejected []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "n":
				params.Size = *n
			case "nets":
				params.Networks = *nets
			case "demands":
				params.Demands = *demands
			case "kind", "unit", "hmin", "hmax", "cap", "jitter":
				rejected = append(rejected, "-"+f.Name)
			}
			if (f.Name == "n" || f.Name == "nets" || f.Name == "demands") && f.Value.String() == "0" {
				die(fmt.Errorf("-%s 0 is not a valid override for -scenario (omit the flag to use the preset default)", f.Name))
			}
		})
		if len(rejected) > 0 {
			die(fmt.Errorf("flags %v have no effect with -scenario (the preset fixes them); only -n/-nets/-demands/-seed apply", rejected))
		}
		var err error
		p, err = s.Generate(params, *seed)
		if err != nil {
			die(err)
		}
		writeOutput(*out, p)
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	switch *kind {
	case "tree":
		p = treesched.GenerateTreeProblem(treesched.TreeWorkload{
			N: *n, Trees: *nets, Demands: *demands, Unit: *unit,
			HMin: *hmin, HMax: *hmax, Capacity: *capac, CapJitter: *jitter,
		}, rng)
	case "line":
		p = treesched.GenerateLineProblem(treesched.LineWorkload{
			Slots: *n, Resources: *nets, Demands: *demands, Unit: *unit,
			HMin: *hmin, HMax: *hmax, Capacity: *capac, CapJitter: *jitter,
		}, rng)
	default:
		die(fmt.Errorf("unknown kind %q", *kind))
	}
	writeOutput(*out, p)
}

// cmdScenarios lists the preset library.
func cmdScenarios() {
	for _, s := range treesched.Scenarios() {
		fmt.Printf("%-22s %-6s algo=%-11s m=%d  %s\n",
			s.Name, s.KindName, s.DefaultAlgo, s.Defaults.Demands, s.Doc)
	}
}

// solveOutput is the JSON result envelope.
type solveOutput struct {
	Algorithm      string               `json:"algorithm"`
	Profit         float64              `json:"profit"`
	DualUpperBound float64              `json:"dual_upper_bound,omitempty"`
	CertifiedRatio float64              `json:"certified_ratio,omitempty"`
	Bound          float64              `json:"bound,omitempty"`
	Selected       []treesched.Instance `json:"selected"`
	Rounds         int                  `json:"rounds,omitempty"`
	Messages       int64                `json:"messages,omitempty"`
	Aggregations   int                  `json:"aggregations,omitempty"`
	PayloadEntries int64                `json:"payload_entries,omitempty"`
	// StepsPerStage[k][j] is the first-phase execution profile (with
	// -trace): while-loop iterations of stage j+1 in epoch k+1.
	StepsPerStage [][]int `json:"steps_per_stage,omitempty"`
	RaiseEvents   int     `json:"raise_events,omitempty"`
	MISPhases     int     `json:"mis_phases,omitempty"`
}

func cmdSolve(args []string) {
	fs := newFlagSet("solve")
	algo := fs.String("algo", "arbitrary", "algorithm")
	eps := fs.Float64("eps", 0.25, "epsilon")
	seed := fs.Uint64("seed", 1, "MIS priority seed")
	fixed := fs.Bool("fixed", false, "fixed-rounds schedule for dist-* algorithms")
	trace := fs.Bool("trace", false, "include the first-phase execution profile")
	out := fs.String("o", "", "write output to file instead of stdout")
	traceOut := fs.String("trace-out", "", "write the solve's phase-timeline telemetry JSON to this file")
	parseFlags(fs, args)

	p := readProblem(os.Stdin)
	// tel stays nil without -trace-out: the telemetry hooks in core are
	// nil-safe no-ops, so the default path does zero observability work.
	var tel *obs.Trace
	if *traceOut != "" {
		tel = obs.NewTrace()
	}
	opts := treesched.Options{Epsilon: *eps, Seed: *seed, FixedRounds: *fixed, CollectTrace: *trace, Telemetry: tel}
	var (
		res *treesched.Result
		net *core.DistributedResult
		err error
	)
	switch *algo {
	case "tree-unit":
		res, err = treesched.SolveTreeUnit(p, opts)
	case "line-unit":
		res, err = treesched.SolveLineUnit(p, opts)
	case "arbitrary":
		res, err = treesched.SolveArbitrary(p, opts)
	case "narrow":
		res, err = treesched.SolveNarrow(p, opts)
	case "sequential":
		res, err = treesched.SolveSequential(p, opts)
	case "seq-line":
		res, err = treesched.SolveSequentialLine(p, opts)
	case "exact":
		// Exact and Greedy take no Options; their telemetry hook is the
		// explicit *Traced variant on the compiled form.
		var c *core.Compiled
		if c, err = core.Compile(p, 0); err == nil {
			res, err = c.ExactTraced(0, tel)
		}
	case "greedy":
		var c *core.Compiled
		if c, err = core.Compile(p, 0); err == nil {
			res, err = c.GreedyTraced(tel)
		}
	case "ps":
		res, err = treesched.SolvePanconesiSozio(p, opts)
	case "dist-unit":
		net, err = treesched.SolveDistributedUnit(p, opts)
		if net != nil {
			res = net.Result
		}
	case "dist-narrow":
		net, err = treesched.SolveDistributedNarrow(p, opts)
		if net != nil {
			res = net.Result
		}
	case "dist-ps":
		net, err = treesched.SolveDistributedPanconesiSozio(p, opts)
		if net != nil {
			res = net.Result
		}
	default:
		die(fmt.Errorf("unknown algorithm %q", *algo))
	}
	if err != nil {
		die(err)
	}
	vsp := tel.Begin("verify_solution")
	verr := treesched.VerifySolution(p, res.Selected)
	tel.End(vsp)
	if verr != nil {
		dieInfeasible(fmt.Errorf("solver emitted infeasible solution: %w", verr))
	}
	sol := solveOutput{
		Algorithm:      res.Name,
		Profit:         res.Profit,
		DualUpperBound: res.DualUB,
		CertifiedRatio: res.CertifiedRatio,
		Bound:          res.Bound,
		Selected:       res.Selected,
	}
	if net != nil {
		sol.Rounds = net.Net.Rounds
		sol.Messages = net.Net.Messages
		sol.Aggregations = net.Net.Aggregations
		sol.PayloadEntries = net.Net.Entries
	}
	if res.Trace != nil {
		sol.StepsPerStage = res.Trace.StepsPerStage
		sol.RaiseEvents = len(res.Trace.Events)
		sol.MISPhases = res.Trace.MISPhases
	}
	writeOutput(*out, sol)
	if tel != nil {
		writeOutput(*traceOut, tel.Export())
	}
}

func cmdVerify(args []string) {
	fs := newFlagSet("verify")
	solPath := fs.String("solution", "", "path to a solve output JSON")
	parseFlags(fs, args)
	if *solPath == "" {
		die(fmt.Errorf("verify needs -solution"))
	}
	p := readProblem(os.Stdin)
	data, err := os.ReadFile(*solPath)
	if err != nil {
		die(err)
	}
	var sol solveOutput
	if err := json.Unmarshal(data, &sol); err != nil {
		die(err)
	}
	if err := treesched.VerifySolution(p, sol.Selected); err != nil {
		dieInfeasible(err)
	}
	fmt.Printf("feasible: %d demands scheduled, profit %.3f\n", len(sol.Selected), sol.Profit)
}

func cmdStats(args []string) {
	fs := newFlagSet("stats")
	parseFlags(fs, args)
	p := readProblem(os.Stdin)
	m, err := model.Build(p, model.Options{})
	if err != nil {
		die(err)
	}
	fmt.Printf("kind:          %v\n", p.Kind)
	fmt.Printf("networks:      %d\n", p.NumNetworks())
	fmt.Printf("demands:       %d\n", len(p.Demands))
	fmt.Printf("instances:     %d\n", len(m.Insts))
	fmt.Printf("edge space:    %d\n", m.EdgeSpace)
	fmt.Printf("layer groups:  %d\n", m.NumGroups)
	fmt.Printf("critical ∆:    %d\n", m.Delta)
	pmin, pmax := p.ProfitRange()
	fmt.Printf("profit spread: %.3g (%.3g..%.3g)\n", pmax/pmin, pmin, pmax)
	hmin, hmax := p.HeightRange()
	fmt.Printf("heights:       %.3g..%.3g (unit=%v)\n", hmin, hmax, p.UnitHeight())
	cg := conflict.Build(m)
	edges := 0
	maxDeg := 0
	for i := int32(0); int(i) < cg.N; i++ {
		edges += cg.Degree(i)
		if cg.Degree(i) > maxDeg {
			maxDeg = cg.Degree(i)
		}
	}
	fmt.Printf("conflicts:     %d edges, max degree %d\n", edges/2, maxDeg)
	for q, d := range m.Decomps {
		fmt.Printf("tree %d:        ideal decomposition depth %d, θ=%d\n", q, d.MaxDepth(), d.PivotSize())
	}
}

func readProblem(r io.Reader) *treesched.Problem {
	data, err := io.ReadAll(r)
	if err != nil {
		die(err)
	}
	var p treesched.Problem
	if err := json.Unmarshal(data, &p); err != nil {
		die(err)
	}
	return &p
}
