package main

// Pins the documented exit-code contract (0 success, 1 operational
// error, 2 usage error, 3 infeasible) against the built binary. Before
// this test, every subcommand FlagSet used flag.ExitOnError, so the
// contract for bad flags was whatever the flag package chose to do —
// including exiting 0-on--h mid-pipeline — rather than a decision this
// package owns and documents.

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildSchedtool compiles the command once per test binary.
func buildSchedtool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "schedtool")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building schedtool: %v\n%s", err, out)
	}
	return bin
}

// runTool executes the binary and returns its exit code and stderr.
func runTool(t *testing.T, bin string, stdin string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var stderr strings.Builder
	cmd.Stderr = &stderr
	cmd.Stdout = nil
	err := cmd.Run()
	if err == nil {
		return 0, stderr.String()
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("running %v: %v", args, err)
	}
	return exitErr.ExitCode(), stderr.String()
}

func TestExitCodes(t *testing.T) {
	bin := buildSchedtool(t)

	// A small feasible problem and a solve output to drive 0 and 3.
	problemPath := filepath.Join(t.TempDir(), "problem.json")
	solPath := filepath.Join(t.TempDir(), "sol.json")
	if code, errOut := runTool(t, bin, "", "gen", "-kind", "line", "-n", "12", "-nets", "1", "-demands", "4", "-unit", "-o", problemPath); code != 0 {
		t.Fatalf("gen exited %d: %s", code, errOut)
	}
	problem, err := os.ReadFile(problemPath)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("success is 0", func(t *testing.T) {
		if code, errOut := runTool(t, bin, string(problem), "solve", "-algo", "line-unit", "-o", solPath); code != 0 {
			t.Fatalf("solve exited %d: %s", code, errOut)
		}
		if code, errOut := runTool(t, bin, string(problem), "verify", "-solution", solPath); code != 0 {
			t.Fatalf("verify exited %d: %s", code, errOut)
		}
	})

	t.Run("operational error is 1", func(t *testing.T) {
		if code, _ := runTool(t, bin, "not json", "solve", "-algo", "line-unit"); code != 1 {
			t.Fatalf("solve on garbage stdin exited %d, want 1", code)
		}
		if code, _ := runTool(t, bin, string(problem), "solve", "-algo", "no-such-algo"); code != 1 {
			t.Fatalf("unknown algorithm exited %d, want 1", code)
		}
	})

	t.Run("bad flag is 2 with usage", func(t *testing.T) {
		for _, args := range [][]string{
			{"gen", "-no-such-flag"},
			{"solve", "-algo"}, // missing value
			{"verify", "-bogus"},
			{"stats", "-bogus"},
			{"trace", "-bogus"},
			{"replay", "-bogus"},
		} {
			code, errOut := runTool(t, bin, "", args...)
			if code != 2 {
				t.Fatalf("%v exited %d, want 2", args, code)
			}
			if !strings.Contains(errOut, "Usage of "+args[0]) {
				t.Fatalf("%v printed no usage message:\n%s", args, errOut)
			}
		}
	})

	t.Run("unknown subcommand is 2", func(t *testing.T) {
		if code, _ := runTool(t, bin, "", "frobnicate"); code != 2 {
			t.Fatalf("unknown subcommand exited %d, want 2", code)
		}
		if code, _ := runTool(t, bin, ""); code != 2 {
			t.Fatalf("no subcommand exited %d, want 2", code)
		}
	})

	t.Run("help is 0", func(t *testing.T) {
		code, errOut := runTool(t, bin, "", "solve", "-h")
		if code != 0 {
			t.Fatalf("-h exited %d, want 0", code)
		}
		if !strings.Contains(errOut, "Usage of solve") {
			t.Fatalf("-h printed no usage:\n%s", errOut)
		}
	})

	t.Run("infeasible is 3", func(t *testing.T) {
		// Corrupt the solution: duplicate the selected instances so the
		// same demand is scheduled twice — structurally infeasible.
		raw, err := os.ReadFile(solPath)
		if err != nil {
			t.Fatal(err)
		}
		var sol map[string]any
		if err := json.Unmarshal(raw, &sol); err != nil {
			t.Fatal(err)
		}
		selected, _ := sol["selected"].([]any)
		if len(selected) == 0 {
			t.Fatal("solve selected nothing; cannot build an infeasible solution")
		}
		sol["selected"] = append(selected, selected...)
		bad, err := json.Marshal(sol)
		if err != nil {
			t.Fatal(err)
		}
		badPath := filepath.Join(t.TempDir(), "bad.json")
		if err := os.WriteFile(badPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if code, _ := runTool(t, bin, string(problem), "verify", "-solution", badPath); code != 3 {
			t.Fatalf("infeasible verify exited %d, want 3", code)
		}
	})
}
