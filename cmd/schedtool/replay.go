package main

// The trace/replay subcommands of the online-session subsystem:
//
//	schedtool trace  -scenario videowall-line [-seed 1] [-churn 0.1]
//	                 [-batches 20] [-initial 0.5] [-algo name] [-o trace.ndjson]
//	schedtool replay -trace trace.ndjson [-o outcomes.ndjson]
//
// `trace` generates a deterministic arrival/departure event stream from
// a scenario preset. `replay` drives the stream through an
// internal/online session (delta recompilation per resolve), writes one
// deterministic NDJSON outcome line per event — replaying the same trace
// twice yields byte-identical output — and reports per-event latency
// percentiles on stderr (latency never enters the NDJSON, which would
// break determinism).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"treesched/internal/obs"
	"treesched/internal/online"
	"treesched/internal/online/trace"
)

func cmdTrace(args []string) {
	fs := newFlagSet("trace")
	scen := fs.String("scenario", "", "scenario preset supplying the network and job pool (required)")
	seed := fs.Int64("seed", 1, "generation seed")
	churn := fs.Float64("churn", 0.1, "fraction of live jobs swapped per batch")
	batches := fs.Int("batches", 20, "churn-and-resolve batches after the initial resolve")
	initial := fs.Float64("initial", 0.5, "fraction of the pool live at the first resolve")
	algo := fs.String("algo", "", "override the preset's default algorithm")
	out := fs.String("o", "", "write the trace to a file instead of stdout")
	parseFlags(fs, args)
	if *scen == "" {
		die(fmt.Errorf("trace: -scenario is required (see `schedtool scenarios`)"))
	}
	// Validate here rather than relying on Config's zero-means-default:
	// an explicit `-churn 0` must error, not silently become 0.1.
	if *churn <= 0 || *churn > 1 {
		die(fmt.Errorf("trace: -churn %g outside (0,1] (each batch swaps at least one job; zero churn is unrepresentable)", *churn))
	}
	tr, err := trace.FromScenario(trace.Config{
		Scenario:    *scen,
		Seed:        *seed,
		Churn:       *churn,
		Batches:     *batches,
		InitialFrac: *initial,
		Algo:        *algo,
	})
	if err != nil {
		die(err)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				die(err)
			}
		}()
		w = f
	}
	if err := trace.Write(w, tr); err != nil {
		die(err)
	}
}

func cmdReplay(args []string) {
	fs := newFlagSet("replay")
	in := fs.String("trace", "", "trace NDJSON file (required; - for stdin)")
	out := fs.String("o", "", "write outcome NDJSON to a file instead of stdout")
	quiet := fs.Bool("q", false, "suppress the latency summary on stderr")
	parseFlags(fs, args)
	if *in == "" {
		die(fmt.Errorf("replay: -trace is required"))
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			die(err)
		}
		defer f.Close()
		r = f
	}
	tr, err := trace.Read(r)
	if err != nil {
		die(err)
	}

	outcomes, sess, err := trace.Replay(tr)
	if err != nil {
		die(err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				die(err)
			}
		}()
		w = f
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	for i := range outcomes {
		if err := enc.Encode(&outcomes[i]); err != nil {
			die(err)
		}
	}
	if err := bw.Flush(); err != nil {
		die(err)
	}

	if !*quiet {
		reportLatency(os.Stderr, tr, outcomes, sess)
	}
}

// reportLatency summarizes per-event latency by operation class: the
// interesting split is cheap staging events (add/remove) vs resolve
// events, and within resolves, delta-path vs full recompiles. The
// quantiles come from internal/obs histograms — the one quantile
// implementation the repo has — so the replay report, /metrics and the
// bench reports all agree on bucketing and rank definitions.
func reportLatency(w io.Writer, tr *trace.Trace, outcomes []trace.Outcome, sess *online.Session) {
	classes := map[string]*obs.Histogram{}
	for _, o := range outcomes {
		key := o.Op
		if o.Op == "resolve" {
			if o.Incremental {
				key = "resolve(delta)"
			} else {
				key = "resolve(full)"
			}
		}
		h := classes[key]
		if h == nil {
			h = new(obs.Histogram)
			classes[key] = h
		}
		h.Observe(o.LatencyNS)
	}
	names := make([]string, 0, len(classes))
	for n := range classes {
		names = append(names, n)
	}
	sort.Strings(names)
	st := sess.Stats()
	fmt.Fprintf(w, "replay: %s algo=%s events=%d jobs(final)=%d resolves=%d (delta=%d full=%d cached=%d)\n",
		tr.Header.Name, tr.Header.Algo, len(outcomes), st.Jobs,
		st.Resolves, st.IncrementalResolves, st.FullResolves, st.CachedResolves)
	for _, n := range names {
		s := classes[n].Summarize()
		fmt.Fprintf(w, "  %-14s n=%-4d mean=%8.1fµs  p50=%8.1fµs  p90=%8.1fµs  p99=%8.1fµs  max=%8.1fµs\n",
			n, s.Count, s.MeanNs/1e3,
			float64(s.P50Ns)/1e3, float64(s.P90Ns)/1e3, float64(s.P99Ns)/1e3, float64(s.MaxNs)/1e3)
	}
}
